#!/usr/bin/env python3
"""Validate and compare BENCH_*.json documents emitted by bench/bench_json.

Two modes:

  bench_regress.py --validate FILE
      Checks that FILE parses and matches the tmh-bench-v1 schema (used by the
      bench-smoke CTest target). Exit 0 on success.

  bench_regress.py BASELINE CANDIDATE [BASELINE2 CANDIDATE2 ...]
                   [--threshold PCT] [--metric-threshold [SNAP/]M=PCT]
      Compares each BASELINE/CANDIDATE pair in turn (so one invocation gates
      every committed snapshot: BENCH_substrate.json and BENCH_scale.json
      against their freshly recorded counterparts). Prints a per-benchmark
      comparison (ns/op and throughput ratios) and exits 1 on:
        * a micro-kernel throughput (items/s) regression beyond the general
          threshold (default 25%, deliberately loose: single-machine wall
          numbers), or
        * a gated metric (sim_events_per_s; pages_touched_per_s, the honest
          work rate that survives op batching; sweep efficiency =
          speedup/jobs) moving beyond its per-metric threshold in EITHER
          direction — a
          too-good number means the committed snapshot is stale or the
          measurement is broken, and should be re-recorded deliberately, or
        * a benchmark present in BASELINE but missing from CANDIDATE
          (pass --allow-missing to tolerate deliberate removals), or
        * a sweep benchmark reporting speedup/jobs on only ONE side — the
          efficiency gate cannot run, and a silently skipped gate is itself a
          failure (--allow-missing tolerates this too), or
        * the COMBINED gate: the geometric mean of every two-sided gated
          ratio in the pair moving beyond the "combined" threshold. Each
          metric can drift just inside its own band, so a snapshot whose
          storm metrics all slide the same direction at once (the
          BENCH_scale failure mode) passes every per-metric gate while the
          whole machine has regressed; the geomean sees the systemic drift.
          Its default band is deliberately very loose (85%) because a slower
          CI machine shifts every wall-clock rate down together; tighten it
          per snapshot (e.g. --metric-threshold BENCH_scale/combined=40)
          when baseline and candidate come from the same machine.

Per-metric thresholds are set with repeatable --metric-threshold flags, e.g.
  --metric-threshold sim_events_per_s=60 --metric-threshold efficiency=50
A threshold of T percent accepts ratios in [1 - T/100, 1 / (1 - T/100)], so
the band is symmetric in log space. Defaults are generous because CI may run
on a machine unlike the one that recorded the snapshot: 60 for
sim_events_per_s and pages_touched_per_s, 50 for efficiency. Every failure
flag carries the measured percent delta alongside the threshold it tripped.

With multiple snapshot pairs, a threshold can be scoped to one snapshot by
prefixing it with the baseline file's stem and a slash:
  --metric-threshold BENCH_scale/sim_events_per_s=40
applies only to the pair whose baseline is .../BENCH_scale.json; unscoped
thresholds apply to every pair. Failures are reported per snapshot.

Sweep efficiency divides speedup by min(jobs, cpus) when the benchmark
records the "cpus" it actually ran on: requesting 8 workers on a 1-CPU
container can never speed up 8x, and gating speedup/jobs there would hold the
sweep to an impossible bar (or hide a real scaling regression on big
machines behind a band sized for small ones).

Typical flow:

  ./build/bench/bench_json /tmp/before.json     # on the baseline commit
  ./build/bench/bench_json /tmp/after.json      # on the candidate
  python3 tools/bench_regress.py /tmp/before.json /tmp/after.json
"""

import argparse
import json
import math
import os
import sys

SCHEMA = "tmh-bench-v1"

# Metrics gated in both directions, with their default thresholds (percent).
GATED_METRIC_DEFAULTS = {
    "sim_events_per_s": 60.0,
    "pages_touched_per_s": 60.0,  # honest work rate: survives op batching
    "efficiency": 50.0,  # parallel-sweep speedup / jobs
    # Geometric mean of ALL the two-sided ratios above, across the whole
    # snapshot pair: catches every gated metric drifting the same direction
    # at once while each stays just inside its own band. Loose by default
    # (cross-machine wall rates move together); scope-tighten per snapshot.
    "combined": 85.0,
}


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    errors = validate(doc)
    if errors:
        raise SystemExit(f"{path}: " + "; ".join(errors))
    return doc


def validate(doc):
    errors = []
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        errors.append("benchmarks must be a non-empty list")
        return errors
    for b in benches:
        name = b.get("name")
        if not isinstance(name, str) or not name:
            errors.append("benchmark missing name")
            continue
        # Micro-kernels report ns/op + items/s; end-to-end runs report
        # sim-events/s; wall-clock-only entries (e.g. sweep_fig07_parallel)
        # report just wall_s. Any of the three field sets is acceptable.
        has_micro = isinstance(b.get("ns_per_op"), (int, float)) and isinstance(
            b.get("items_per_s"), (int, float)
        )
        has_e2e = isinstance(b.get("sim_events_per_s"), (int, float))
        has_wall = isinstance(b.get("wall_s"), (int, float))
        if not (has_micro or has_e2e or has_wall):
            errors.append(f"{name}: no ns_per_op/items_per_s, sim_events_per_s, or wall_s")
        for key in ("ns_per_op", "items_per_s", "sim_events_per_s", "wall_s",
                    "serial_wall_s", "speedup", "pages_touched", "pages_touched_per_s"):
            v = b.get(key)
            if v is not None and (not isinstance(v, (int, float)) or v <= 0):
                errors.append(f"{name}: {key} must be a positive number, got {v!r}")
        for key in ("jobs", "cpus", "workers"):
            v = b.get(key)
            if v is not None and (not isinstance(v, int) or v <= 0):
                errors.append(f"{name}: {key} must be a positive integer, got {v!r}")
    return errors


def rate_of(bench):
    """Higher-is-better throughput, or (None, None) for wall-clock-only entries."""
    # A key explicitly set to null means "not measured": fall through to the
    # micro-kernel rate rather than crashing on float(None).
    v = bench.get("sim_events_per_s")
    if v is not None:
        return float(v), "sim_events_per_s"
    v = bench.get("items_per_s")
    if v is not None:
        return float(v), "items_per_s"
    return None, None


def efficiency_of(bench):
    """Parallel scaling efficiency: speedup per *usable* worker, or None.

    The denominator is min(jobs, cpus) when the benchmark records the CPUs it
    ran on — a 1-CPU container asked for 8 jobs can only ever reach 1x, and
    dividing by 8 would misread that as a 12% efficiency collapse.
    """
    speedup = bench.get("speedup")
    jobs = bench.get("jobs")
    if speedup is None or not jobs:
        return None
    cpus = bench.get("cpus")
    denom = min(jobs, cpus) if isinstance(cpus, int) and cpus > 0 else jobs
    return float(speedup) / float(denom)


def gate_both_ways(name, metric, base_val, cand_val, threshold_pct, failed):
    """Two-sided gate: ratios outside [1-t, 1/(1-t)] fail. Returns the ratio."""
    ratio = cand_val / base_val
    delta_pct = (ratio - 1.0) * 100.0
    lo = 1.0 - threshold_pct / 100.0
    hi = 1.0 / lo if lo > 0 else float("inf")
    flag = ""
    if ratio < lo:
        flag = f"  << REGRESSION ({metric}: {delta_pct:+.1f}%, threshold -{threshold_pct:.0f}%)"
        failed.append(name)
    elif ratio > hi:
        flag = (f"  << SUSPICIOUS IMPROVEMENT ({metric}: {delta_pct:+.1f}%, "
                f"threshold +{(hi - 1.0) * 100.0:.0f}%: re-record the snapshot)")
        failed.append(name)
    return ratio, flag


def compare(baseline, candidate, threshold_pct, metric_thresholds, allow_missing=False):
    base_by_name = {b["name"]: b for b in baseline["benchmarks"]}
    worst = 0.0
    failed = []
    wall_notes = []
    gated_ratios = []  # every two-sided ratio, for the combined geomean gate
    print(f"{'benchmark':32} {'base':>14} {'cand':>14} {'ratio':>8}")
    for cand in candidate["benchmarks"]:
        name = cand["name"]
        base = base_by_name.get(name)
        if base is None:
            print(f"{name:32} {'(new)':>14}")
            continue
        base_rate, unit = rate_of(base)
        cand_rate, _ = rate_of(cand)
        base_wall = base.get("wall_s")
        cand_wall = cand.get("wall_s")
        if base_wall is not None and cand_wall is not None:
            # Lower is better for wall clocks; positive delta = got slower.
            wall_notes.append(
                f"{name} {(float(cand_wall) / float(base_wall) - 1.0) * 100.0:+.1f}%")

        # Scaling efficiency (speedup/jobs) is gated both ways whenever both
        # documents report it, independently of any throughput fields.
        base_eff = efficiency_of(base)
        cand_eff = efficiency_of(cand)
        if (base_eff is None) != (cand_eff is None):
            # One side has speedup/jobs and the other does not: the efficiency
            # gate would silently skip, which is how a sweep benchmark that
            # stops reporting its scaling numbers sneaks past the gate. Treat
            # asymmetric presence like a dropped benchmark: explicit failure
            # unless --allow-missing waves it through.
            side = "candidate" if cand_eff is None else "baseline"
            flag = "" if allow_missing else f"  << MISSING METRIC (efficiency: no speedup/jobs in {side})"
            print(f"{name + ' [eff]':32} {'(asymmetric speedup/jobs)':>29}{flag}")
            if not allow_missing:
                failed.append(name)
        if base_eff is not None and cand_eff is not None:
            eff_threshold = metric_thresholds["efficiency"]
            ratio, flag = gate_both_ways(name, "efficiency", base_eff, cand_eff,
                                         eff_threshold, failed)
            gated_ratios.append(ratio)
            print(f"{name + ' [eff]':32} {base_eff:>13.2f}x {cand_eff:>13.2f}x "
                  f"{ratio:>7.2f}x{flag}")

        # Honest work rate (pages touched per wall second): gated both ways,
        # independently of sim_events_per_s, because op batching legitimately
        # shrinks the event count — pages touched is the workload-invariant
        # denominator that can't be gamed by fusing ops.
        base_pages = base.get("pages_touched_per_s")
        cand_pages = cand.get("pages_touched_per_s")
        if (base_pages is None) != (cand_pages is None):
            side = "candidate" if cand_pages is None else "baseline"
            flag = ("" if allow_missing else
                    f"  << MISSING METRIC (pages_touched_per_s absent from {side})")
            print(f"{name + ' [pages]':32} {'(asymmetric pages_touched_per_s)':>33}{flag}")
            if not allow_missing:
                failed.append(name)
        if base_pages is not None and cand_pages is not None:
            ratio, flag = gate_both_ways(name, "pages_touched_per_s", float(base_pages),
                                         float(cand_pages),
                                         metric_thresholds["pages_touched_per_s"], failed)
            gated_ratios.append(ratio)
            print(f"{name + ' [pages]':32} {float(base_pages):>12.0f}/s "
                  f"{float(cand_pages):>12.0f}/s {ratio:>7.2f}x{flag}")

        if base_rate is None or cand_rate is None:
            # Wall-clock-only entries are machine-dependent end-to-end timings:
            # their delta is reported in the summary line but never gated.
            if base_eff is None and cand_eff is None:
                base_txt = f"{base_wall:.2f}s" if base_wall is not None else "n/a"
                cand_txt = f"{cand_wall:.2f}s" if cand_wall is not None else "n/a"
                print(f"{name:32} {base_txt:>14} {cand_txt:>14}   (wall, not gated)")
            continue

        if unit in metric_thresholds:
            # Gated metric: deviations beyond the per-metric threshold fail in
            # either direction.
            ratio, flag = gate_both_ways(name, unit, base_rate, cand_rate,
                                         metric_thresholds[unit], failed)
            gated_ratios.append(ratio)
            worst = max(worst, (1.0 - ratio) * 100.0)
            print(f"{name:32} {base_rate:>12.0f}/s {cand_rate:>12.0f}/s {ratio:>7.2f}x{flag}")
            continue

        ratio = cand_rate / base_rate
        flag = ""
        regression_pct = (1.0 - ratio) * 100.0
        if regression_pct > threshold_pct:
            flag = (f"  << REGRESSION ({unit}: {(ratio - 1.0) * 100.0:+.1f}%, "
                    f"threshold -{threshold_pct:.0f}%)")
            failed.append(name)
        worst = max(worst, regression_pct)
        print(f"{name:32} {base_rate:>12.0f}/s {cand_rate:>12.0f}/s {ratio:>7.2f}x{flag}")
    # Combined gate: per-metric bands let every rate drift to just inside its
    # own edge, so a snapshot whose gated metrics all slide the same direction
    # at once (e.g. the storm metrics in BENCH_scale) passes each gate while
    # the machine has systemically regressed. The geometric mean of all the
    # two-sided ratios catches exactly that correlated drift.
    if gated_ratios:
        geomean = math.exp(sum(math.log(r) for r in gated_ratios) / len(gated_ratios))
        ratio, flag = gate_both_ways("combined", "combined", 1.0, geomean,
                                     metric_thresholds["combined"], failed)
        print(f"{'combined [geomean]':32} {'1.00x':>14} {geomean:>13.2f}x "
              f"{ratio:>7.2f}x{flag}")
    cand_names = {b["name"] for b in candidate["benchmarks"]}
    for name in base_by_name:
        if name not in cand_names:
            # A benchmark silently vanishing is exactly the failure a regression
            # gate exists to catch; only --allow-missing waves it through.
            flag = "" if allow_missing else "  << MISSING"
            print(f"{name:32} {'(dropped from candidate)':>24}{flag}")
            if not allow_missing:
                failed.append(name)
    summary = f"\nworst regression: {worst:.1f}% (threshold {threshold_pct:.0f}%)"
    if wall_notes:
        summary += "; wall-time delta: " + ", ".join(wall_notes)
    print(summary)
    return failed


def snapshot_name(path):
    """Snapshot identifier for scoped thresholds: the file stem (BENCH_scale)."""
    base = os.path.basename(path)
    stem, _, _ = base.rpartition(".json")
    return stem if stem else base


def parse_metric_thresholds(pairs):
    """Returns (global_thresholds, {snapshot: {metric: pct}}).

    Each flag is [SNAPSHOT/]METRIC=PCT; the scoped form applies only to the
    pair whose baseline file stem matches SNAPSHOT.
    """
    thresholds = dict(GATED_METRIC_DEFAULTS)
    scoped = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--metric-threshold wants [SNAPSHOT/]METRIC=PCT, got {pair!r}")
        key, _, pct = pair.partition("=")
        scope = None
        metric = key
        if "/" in key:
            scope, _, metric = key.partition("/")
            if not scope:
                raise SystemExit(f"--metric-threshold: empty snapshot scope in {pair!r}")
        if metric not in GATED_METRIC_DEFAULTS:
            known = ", ".join(sorted(GATED_METRIC_DEFAULTS))
            raise SystemExit(f"unknown gated metric {metric!r} (known: {known})")
        try:
            value = float(pct)
        except ValueError:
            raise SystemExit(f"--metric-threshold {metric}: {pct!r} is not a number")
        if not 0 < value < 100:
            raise SystemExit(f"--metric-threshold {metric}: must be in (0, 100)")
        if scope is None:
            thresholds[metric] = value
        else:
            scoped.setdefault(scope, {})[metric] = value
    return thresholds, scoped


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="+", help="JSON file(s)")
    parser.add_argument("--validate", action="store_true", help="schema-check only")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="max tolerated micro-kernel throughput regression, percent")
    parser.add_argument("--metric-threshold", action="append", default=[],
                        metavar="[SNAP/]METRIC=PCT",
                        help="per-metric two-sided threshold for gated metrics "
                             "(sim_events_per_s, efficiency); optionally scoped "
                             "to one snapshot pair by its baseline file stem; "
                             "repeatable")
    parser.add_argument("--allow-missing", action="store_true",
                        help="tolerate benchmarks present in BASELINE but "
                             "absent from CANDIDATE (deliberate removals)")
    args = parser.parse_args()

    if args.validate:
        for path in args.files:
            load(path)
            print(f"{path}: OK ({SCHEMA})")
        return 0

    if len(args.files) < 2 or len(args.files) % 2 != 0:
        parser.error("compare mode takes BASELINE CANDIDATE pairs "
                     "(an even number of files, at least two)")
    global_thresholds, scoped = parse_metric_thresholds(args.metric_threshold)
    multi = len(args.files) > 2
    all_failed = []
    for i in range(0, len(args.files), 2):
        base_path, cand_path = args.files[i], args.files[i + 1]
        snap = snapshot_name(base_path)
        if multi:
            print(f"=== {snap}: {base_path} vs {cand_path} ===")
        baseline = load(base_path)
        candidate = load(cand_path)
        metric_thresholds = dict(global_thresholds)
        metric_thresholds.update(scoped.get(snap, {}))
        failed = compare(baseline, candidate, args.threshold, metric_thresholds,
                         args.allow_missing)
        all_failed.extend(f"{snap}:{name}" if multi else name for name in failed)
        if multi:
            print()
    unknown_scopes = set(scoped) - {snapshot_name(args.files[i])
                                    for i in range(0, len(args.files), 2)}
    if unknown_scopes:
        print(f"warning: scoped thresholds for unknown snapshot(s): "
              f"{', '.join(sorted(unknown_scopes))}", file=sys.stderr)
    if all_failed:
        print(f"FAILED: {', '.join(all_failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
