#!/usr/bin/env python3
"""Self-test for bench_regress.py: exit codes for the gate's failure modes.

Runs the gate as a subprocess against the fixtures in tests/data/ and asserts:

  * --validate accepts every fixture (including an explicit null rate and a
    wall-clock-only entry);
  * a benchmark dropped from the candidate fails the gate (exit 1) and is
    waved through by --allow-missing;
  * "sim_events_per_s": null falls back to items_per_s instead of crashing;
  * a real throughput regression past the threshold still fails;
  * wall-clock-only entries are reported in the summary's wall-time delta but
    never gate, even when the wall time balloons;
  * gated metrics (sim_events_per_s, pages_touched_per_s, sweep efficiency =
    speedup/jobs) fail in BOTH directions: a collapse and a suspiciously
    large improvement both exit 1, failure flags carry the measured percent
    delta, and --metric-threshold overrides the per-metric band;
  * speedup/jobs or pages_touched_per_s present on only one side (either
    direction) fails instead of silently skipping that gate; --allow-missing
    tolerates it;
  * the combined gate (geometric mean of every two-sided gated ratio in the
    pair) catches all metrics drifting the same direction at once while each
    stays inside its own band; the default band is loose enough that the
    same drift passes untightened, and SNAP/combined=PCT scopes the
    tightening to one snapshot pair;
  * multi-snapshot mode compares each BASELINE CANDIDATE pair in one
    invocation, prefixes failures with the snapshot stem, scopes
    SNAP/METRIC=PCT thresholds to their pair, and rejects odd file counts;
  * a "cpus" field caps the efficiency denominator at min(jobs, cpus), so a
    1-CPU run of an 8-job sweep gates at speedup/1, not speedup/8.

Usage: bench_regress_test.py [DATA_DIR]   (default: ../tests/data next to
this script, so it runs both from the source tree and from CTest).
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
GATE = os.path.join(HERE, "bench_regress.py")


def run_gate(*args):
    proc = subprocess.run(
        [sys.executable, GATE, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode, proc.stdout


def check(label, ok, output):
    if ok:
        print(f"PASS {label}")
        return 0
    print(f"FAIL {label}\n{output}")
    return 1


def main():
    data = sys.argv[1] if len(sys.argv) > 1 else os.path.join(HERE, "..", "tests", "data")
    baseline = os.path.join(data, "bench_baseline.json")
    missing = os.path.join(data, "bench_missing.json")
    null_rate = os.path.join(data, "bench_null_rate.json")
    wall_only = os.path.join(data, "bench_wall_only.json")

    failures = 0

    for path in (baseline, missing, null_rate, wall_only):
        code, out = run_gate("--validate", path)
        failures += check(f"validate {os.path.basename(path)}", code == 0, out)

    code, out = run_gate(baseline, missing)
    failures += check("dropped benchmark fails the gate",
                      code == 1 and "MISSING" in out and "micro_b" in out, out)

    code, out = run_gate(baseline, missing, "--allow-missing")
    failures += check("--allow-missing tolerates the drop", code == 0, out)

    code, out = run_gate(baseline, null_rate)
    failures += check("null sim_events_per_s falls back to items_per_s",
                      code == 0 and "Traceback" not in out, out)

    # A genuine regression must still trip the gate: degrade one rate by 2x.
    with open(baseline, encoding="utf-8") as f:
        doc = json.load(f)
    for bench in doc["benchmarks"]:
        if bench["name"] == "micro_b":
            bench["items_per_s"] = bench["items_per_s"] / 2
            bench["ns_per_op"] = bench["ns_per_op"] * 2
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        json.dump(doc, f)
        slow = f.name
    try:
        code, out = run_gate(baseline, slow)
        failures += check("50% throughput loss fails the gate",
                          code == 1 and "REGRESSION" in out, out)
    finally:
        os.unlink(slow)

    # Wall-clock-only entries: the delta shows up in the summary line but a
    # 4x-slower wall time must not trip the gate (it is machine-dependent).
    with open(wall_only, encoding="utf-8") as f:
        doc = json.load(f)
    for bench in doc["benchmarks"]:
        if bench["name"] == "sweep_parallel":
            bench["wall_s"] = bench["wall_s"] * 4
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
        json.dump(doc, f)
        slow_wall = f.name
    try:
        code, out = run_gate(wall_only, slow_wall)
        failures += check("wall-only slowdown reported but not gated",
                          code == 0 and "wall-time delta" in out
                          and "sweep_parallel +300.0%" in out, out)
    finally:
        os.unlink(slow_wall)

    # Two-sided gated metrics. Mutate the fixture's e2e and sweep entries and
    # check each direction of each gate.
    def mutated(base_path, mutate):
        with open(base_path, encoding="utf-8") as f:
            doc = json.load(f)
        for bench in doc["benchmarks"]:
            mutate(bench)
        with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
            json.dump(doc, f)
            return f.name

    def set_events(factor):
        def mutate(bench):
            if bench["name"] == "e2e_run":
                bench["sim_events_per_s"] = bench["sim_events_per_s"] * factor
        return mutate

    def set_speedup(value):
        def mutate(bench):
            if bench["name"] == "sweep_parallel":
                bench["speedup"] = value
        return mutate

    def set_pages(factor):
        def mutate(bench):
            if bench["name"] == "e2e_run":
                bench["pages_touched_per_s"] = bench["pages_touched_per_s"] * factor
        return mutate

    for label, path_args, want_code, want_text in (
        # Default sim_events_per_s band is 60%: [0.4x, 2.5x]. Every failure
        # flag must carry the measured percent delta (here -70%).
        ("sim-events collapse fails with delta",
         [mutated(baseline, set_events(0.3))], 1, "REGRESSION (sim_events_per_s: -70.0%"),
        ("sim-events 3x jump fails as suspicious", [mutated(baseline, set_events(3.0))], 1, "SUSPICIOUS IMPROVEMENT"),
        ("sim-events within band passes", [mutated(baseline, set_events(1.5))], 0, ""),
        # pages_touched_per_s gates both ways with the same default band.
        ("pages-touched collapse fails with delta",
         [mutated(baseline, set_pages(0.3))], 1, "REGRESSION (pages_touched_per_s: -70.0%"),
        ("pages-touched 3x jump fails as suspicious",
         [mutated(baseline, set_pages(3.0))], 1,
         "SUSPICIOUS IMPROVEMENT (pages_touched_per_s: +200.0%"),
        ("pages-touched within band passes", [mutated(baseline, set_pages(1.5))], 0, ""),
        # Default efficiency band is 50%: [0.5x, 2.0x] on speedup/jobs.
        ("efficiency collapse fails", [mutated(wall_only, set_speedup(1.0))], 1, "REGRESSION (efficiency:"),
        ("efficiency within band passes", [mutated(wall_only, set_speedup(3.0))], 0, ""),
        # A tightened per-metric threshold turns the passing 1.5x into a fail.
        ("--metric-threshold tightens the band",
         [mutated(baseline, set_events(1.5)), "--metric-threshold", "sim_events_per_s=20"],
         1, "SUSPICIOUS IMPROVEMENT"),
        ("--metric-threshold tightens the pages band",
         [mutated(baseline, set_pages(1.5)), "--metric-threshold", "pages_touched_per_s=20"],
         1, "SUSPICIOUS IMPROVEMENT (pages_touched_per_s:"),
    ):
        candidate = path_args[0]
        try:
            base_doc = wall_only if "efficiency" in label else baseline
            code, out = run_gate(base_doc, *path_args)
            ok = code == want_code and (want_text in out if want_text else True)
            failures += check(label, ok, out)
        finally:
            os.unlink(candidate)

    # Asymmetric speedup/jobs presence: if either side drops the fields the
    # efficiency gate cannot run, and the silent skip must become an explicit
    # failure (waved through only by --allow-missing).
    def drop_speedup(bench):
        if bench["name"] == "sweep_parallel":
            bench.pop("speedup", None)
            bench.pop("jobs", None)

    no_eff = mutated(wall_only, drop_speedup)
    try:
        code, out = run_gate(wall_only, no_eff)
        failures += check("candidate dropping speedup/jobs fails the gate",
                          code == 1 and "MISSING METRIC (efficiency" in out, out)
        code, out = run_gate(no_eff, wall_only)
        failures += check("baseline without speedup/jobs fails the gate too",
                          code == 1 and "MISSING METRIC (efficiency" in out, out)
        code, out = run_gate(wall_only, no_eff, "--allow-missing")
        failures += check("--allow-missing tolerates asymmetric speedup/jobs",
                          code == 0, out)
    finally:
        os.unlink(no_eff)

    # Same rule for pages_touched_per_s: one side silently dropping the honest
    # work rate must fail, not skip the gate.
    def drop_pages(bench):
        if bench["name"] == "e2e_run":
            bench.pop("pages_touched", None)
            bench.pop("pages_touched_per_s", None)

    no_pages = mutated(baseline, drop_pages)
    try:
        code, out = run_gate(baseline, no_pages)
        failures += check("candidate dropping pages_touched_per_s fails the gate",
                          code == 1 and "MISSING METRIC (pages_touched_per_s" in out, out)
        code, out = run_gate(no_pages, baseline)
        failures += check("baseline without pages_touched_per_s fails the gate too",
                          code == 1 and "MISSING METRIC (pages_touched_per_s" in out, out)
        code, out = run_gate(baseline, no_pages, "--allow-missing")
        failures += check("--allow-missing tolerates asymmetric pages_touched_per_s",
                          code == 0, out)
    finally:
        os.unlink(no_pages)

    # Combined (geomean) gate: drift EVERY gated metric of e2e_run down by the
    # same factor, each staying just inside its own 60% band. The per-metric
    # gates all pass; only the cross-metric geomean sees the correlated slide.
    def drift_all(factor):
        def mutate(bench):
            if bench["name"] == "e2e_run":
                bench["sim_events_per_s"] = bench["sim_events_per_s"] * factor
                bench["pages_touched_per_s"] = bench["pages_touched_per_s"] * factor
        return mutate

    drifted = mutated(baseline, drift_all(0.45))
    try:
        code, out = run_gate(baseline, drifted,
                             "--metric-threshold", "combined=40")
        failures += check("correlated drift trips a tightened combined gate",
                          code == 1 and "REGRESSION (combined:" in out
                          and "REGRESSION (sim_events_per_s" not in out, out)
        code, out = run_gate(baseline, drifted)
        failures += check("same drift passes the default loose combined band",
                          code == 0, out)
        # Scoped combined threshold: tightening it for bench_baseline fails
        # that pair (stem-prefixed), tightening it for the other pair does not.
        code, out = run_gate(baseline, drifted, wall_only, wall_only,
                             "--metric-threshold", "bench_baseline/combined=40")
        failures += check("scoped combined threshold fails its own snapshot",
                          code == 1 and "bench_baseline:combined" in out, out)
        code, out = run_gate(baseline, drifted, wall_only, wall_only,
                             "--metric-threshold", "bench_wall_only/combined=40")
        failures += check("scoped combined threshold leaves other snapshots alone",
                          code == 0, out)
    finally:
        os.unlink(drifted)

    # Multi-snapshot mode: two pairs in one invocation. Pair 2 has a dropped
    # benchmark, so the invocation must fail with the snapshot-stem prefix, and
    # pair 1's clean comparison must not mask it.
    code, out = run_gate(baseline, baseline, baseline, missing)
    failures += check("multi-snapshot: failing second pair fails with stem prefix",
                      code == 1 and "bench_baseline:micro_b" in out
                      and "=== bench_baseline:" in out, out)

    code, out = run_gate(baseline, baseline, wall_only, wall_only)
    failures += check("multi-snapshot: two clean pairs pass", code == 0, out)

    code, out = run_gate(baseline, baseline, wall_only)
    failures += check("odd file count is rejected", code == 2, out)

    # Scoped threshold: tighten sim_events_per_s only for the bench_baseline
    # snapshot; the same candidate under an unrelated scope must still pass.
    boosted = mutated(baseline, set_events(1.5))
    try:
        code, out = run_gate(baseline, boosted, wall_only, wall_only,
                             "--metric-threshold", "bench_baseline/sim_events_per_s=20")
        failures += check("scoped threshold tightens its own snapshot",
                          code == 1 and "bench_baseline:e2e_run" in out, out)
        code, out = run_gate(baseline, boosted, wall_only, wall_only,
                             "--metric-threshold", "bench_wall_only/sim_events_per_s=20")
        failures += check("scoped threshold leaves other snapshots alone",
                          code == 0 and "unknown snapshot" not in out, out)
    finally:
        os.unlink(boosted)

    # cpus-aware efficiency: an 8-job sweep on 1 CPU reports speedup ~1.0 and
    # cpus=1. Against a baseline recorded the same way, efficiency is 1.0/1 on
    # both sides and the gate passes; strip cpus from the candidate and the
    # same speedup reads as 1/8 efficiency and collapses.
    def set_cpus_one(bench):
        if bench["name"] == "sweep_parallel":
            bench["speedup"] = 1.0
            bench["cpus"] = 1

    def strip_cpus(bench):
        if bench["name"] == "sweep_parallel":
            bench["speedup"] = 1.0

    one_cpu = mutated(wall_only, set_cpus_one)
    no_cpus = mutated(wall_only, strip_cpus)
    try:
        code, out = run_gate(one_cpu, one_cpu)
        failures += check("cpus=1 makes an 8-job speedup of 1.0 pass", code == 0, out)
        code, out = run_gate(one_cpu, no_cpus)
        failures += check("dropping cpus exposes the speedup/jobs collapse",
                          code == 1 and "REGRESSION (efficiency:" in out, out)
    finally:
        os.unlink(one_cpu)
        os.unlink(no_cpus)

    if failures:
        print(f"{failures} check(s) failed", file=sys.stderr)
        return 1
    print("all bench_regress self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
