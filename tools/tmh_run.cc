// tmh_run — command-line driver for the library.
//
// Runs any workload at any treatment level on a configurable machine and
// prints the full metric dump; optionally writes a time-series trace CSV.
//
//   tmh_run --workload MATVEC --version B --scale 0.25 --interactive
//           (add --trace /tmp/run.csv for a time-series CSV)
//
// --workload and --version also accept comma lists or "all"; more than one
// combination switches to sweep mode: every combination runs on a SweepRunner
// thread pool (--jobs N, default all cores) sharing one compile cache, and a
// one-line-per-run summary table replaces the full metric dump.
//
// Run with --help for the full flag list, --list for the workload roster.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/core/html_report.h"
#include "src/core/report.h"
#include "src/core/sweep.h"
#include "src/workloads/extra.h"
#include "src/workloads/workloads.h"

namespace {

struct Flags {
  std::string workload = "MATVEC";
  std::string version = "B";
  double scale = 1.0;
  bool interactive = false;
  double sleep_s = 5.0;
  bool adaptive = false;
  bool oracle = false;
  std::string trace_path;
  std::string html_path;
  std::string trace_out_path;    // Chrome tracing JSON (structured event log)
  std::string metrics_out_path;  // metrics registry text dump
  double trace_period_s = 0.1;
  int64_t memory_mb = 0;          // 0 = scale the 75 MB default
  int num_nodes = 1;              // NUMA-style frame-pool nodes
  std::vector<int64_t> tiers;     // slow-tier frame counts, DRAM-adjacent first
  int64_t local_partition = 0;    // pages; 0 = global replacement
  int release_batch = 100;
  int prefetch_threads = 8;
  bool drain_newest_first = false;
  bool checks = false;  // attach the invariant checker + differential oracle
  bool monitor = false;          // online access monitoring + cold-region releases
  bool monitor_protect = false;  // also re-set reference bits for hot regions
  double monitor_period_ms = 0;  // 0 = library default sample period
  bool json = false;
  int jobs = 0;  // sweep-mode worker threads; 0 = all cores
};

void PrintUsage() {
  std::printf(
      "tmh_run — run one out-of-core experiment and dump its metrics\n\n"
      "  --workload NAME     workload to run (--list shows the roster; default MATVEC)\n"
      "                      comma list or \"all\" sweeps every named workload\n"
      "  --version X         O | P | R | B | V (reactive)        [B]\n"
      "                      comma list or \"all\" (= O,P,R,B) sweeps versions\n"
      "  --jobs N            sweep-mode worker threads           [all cores]\n"
      "  --scale F           workload+machine scale in (0,1]     [1.0]\n"
      "  --memory-mb N       user memory in MB (overrides scale) [75*scale]\n"
      "  --nodes N           NUMA-style frame-pool nodes (1..64)  [1]\n"
      "  --tiers N,M,...     slow-tier frame counts, DRAM-adjacent first;\n"
      "                      releases demote into the hierarchy, faults promote\n"
      "  --interactive       run the 1 MB interactive task alongside\n"
      "  --sleep S           interactive think time in seconds   [5]\n"
      "  --adaptive          re-specialize unknown-bound nests at run time\n"
      "  --oracle            compile with perfect knowledge (hand-tuned baseline)\n"
      "  --local-partition N per-process resident cap in pages (local replacement)\n"
      "  --batch N           buffered-release drain batch        [100]\n"
      "  --threads N         prefetch pool size                  [8]\n"
      "  --drain-mru         drain buffered releases newest-first\n"
      "  --checks            cross-validate kernel state against the reference\n"
      "                      oracle after every event (slow; exits 1 on violation)\n"
      "  --monitor           sample the app's access pattern online and release\n"
      "                      cold regions without compiler hints\n"
      "  --monitor-protect   also shield hot regions from the paging daemon\n"
      "  --monitor-period MS monitor sample period in milliseconds  [20]\n"
      "  --trace PATH        write a time-series CSV to PATH\n"
      "  --html PATH         write a standalone HTML trace report to PATH\n"
      "  --trace-out PATH    write a Chrome tracing JSON of kernel events to PATH\n"
      "                      (load in about://tracing or ui.perfetto.dev)\n"
      "  --metrics-out PATH  write the metrics registry text dump to PATH\n"
      "  --trace-period S    trace sample period in seconds      [0.1]\n"
      "  --json              emit machine-readable JSON instead of tables\n"
      "  --list              list available workloads and exit\n");
}

void PrintWorkloads() {
  tmh::ReportTable table({"workload", "loop structure", "data set (full scale)", "set"});
  for (const tmh::WorkloadInfo& info : tmh::AllWorkloads()) {
    table.AddRow({info.name, info.loop_structure,
                  tmh::FormatDouble(
                      static_cast<double>(info.factory(1.0).TotalBytes()) / (1024 * 1024), 0) +
                      " MB",
                  "paper"});
  }
  for (const tmh::WorkloadInfo& info : tmh::ExtraWorkloads()) {
    table.AddRow({info.name, info.loop_structure,
                  tmh::FormatDouble(
                      static_cast<double>(info.factory(1.0).TotalBytes()) / (1024 * 1024), 0) +
                      " MB",
                  "extension"});
  }
  table.Print();
}

std::vector<std::string> SplitList(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--list") {
      PrintWorkloads();
      std::exit(0);
    } else if (arg == "--workload") {
      flags->workload = next("--workload");
    } else if (arg == "--version") {
      flags->version = next("--version");
    } else if (arg == "--scale") {
      flags->scale = std::atof(next("--scale"));
    } else if (arg == "--memory-mb") {
      flags->memory_mb = std::atoll(next("--memory-mb"));
    } else if (arg == "--nodes") {
      flags->num_nodes = std::atoi(next("--nodes"));
      if (flags->num_nodes < 1 || flags->num_nodes > 64) {
        std::fprintf(stderr, "--nodes must be in [1, 64]\n");
        std::exit(2);
      }
    } else if (arg == "--tiers") {
      for (const std::string& part : SplitList(next("--tiers"))) {
        const int64_t frames = std::atoll(part.c_str());
        if (frames < 1) {
          std::fprintf(stderr, "--tiers wants positive frame counts\n");
          std::exit(2);
        }
        flags->tiers.push_back(frames);
      }
    } else if (arg == "--interactive") {
      flags->interactive = true;
    } else if (arg == "--sleep") {
      flags->sleep_s = std::atof(next("--sleep"));
    } else if (arg == "--adaptive") {
      flags->adaptive = true;
    } else if (arg == "--oracle") {
      flags->oracle = true;
    } else if (arg == "--local-partition") {
      flags->local_partition = std::atoll(next("--local-partition"));
    } else if (arg == "--batch") {
      flags->release_batch = std::atoi(next("--batch"));
    } else if (arg == "--threads") {
      flags->prefetch_threads = std::atoi(next("--threads"));
    } else if (arg == "--jobs") {
      flags->jobs = std::atoi(next("--jobs"));
      if (flags->jobs < 0) {
        std::fprintf(stderr, "--jobs must be >= 0\n");
        std::exit(2);
      }
    } else if (arg == "--drain-mru") {
      flags->drain_newest_first = true;
    } else if (arg == "--checks") {
      flags->checks = true;
    } else if (arg == "--monitor") {
      flags->monitor = true;
    } else if (arg == "--monitor-protect") {
      flags->monitor = true;
      flags->monitor_protect = true;
    } else if (arg == "--monitor-period") {
      flags->monitor = true;
      flags->monitor_period_ms = std::atof(next("--monitor-period"));
      if (flags->monitor_period_ms <= 0) {
        std::fprintf(stderr, "--monitor-period must be > 0\n");
        std::exit(2);
      }
    } else if (arg == "--json") {
      flags->json = true;
    } else if (arg == "--trace") {
      flags->trace_path = next("--trace");
    } else if (arg == "--trace-out") {
      flags->trace_out_path = next("--trace-out");
    } else if (arg == "--metrics-out") {
      flags->metrics_out_path = next("--metrics-out");
    } else if (arg == "--html") {
      flags->html_path = next("--html");
    } else if (arg == "--trace-period") {
      flags->trace_period_s = std::atof(next("--trace-period"));
    } else {
      std::fprintf(stderr, "unknown flag '%s' (try --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

tmh::AppVersion ParseVersion(const std::string& s) {
  if (s == "O") return tmh::AppVersion::kOriginal;
  if (s == "P") return tmh::AppVersion::kPrefetch;
  if (s == "R") return tmh::AppVersion::kRelease;
  if (s == "B") return tmh::AppVersion::kBuffered;
  if (s == "V") return tmh::AppVersion::kReactive;
  std::fprintf(stderr, "unknown version '%s' (use O, P, R, B, or V)\n", s.c_str());
  std::exit(2);
}

// The experiment a (workload, version) combination maps to under the current
// flags — shared by the single-run path and sweep mode so both run exactly
// the same spec.
tmh::ExperimentSpec SpecFor(const Flags& flags, const tmh::WorkloadInfo& info,
                            tmh::AppVersion version) {
  tmh::ExperimentSpec spec;
  if (flags.memory_mb > 0) {
    spec.machine.user_memory_bytes = flags.memory_mb * 1024 * 1024;
  } else {
    spec.machine.user_memory_bytes = static_cast<int64_t>(
        static_cast<double>(spec.machine.user_memory_bytes) * flags.scale);
  }
  spec.machine.num_nodes = flags.num_nodes;
  if (!flags.tiers.empty()) {
    spec.machine.tiers.push_back(tmh::TierSpec{});  // tiers[0] = DRAM
    for (const int64_t frames : flags.tiers) {
      tmh::TierSpec tier;
      tier.frames = frames;
      spec.machine.tiers.push_back(tier);
    }
  }
  spec.machine.tunables.local_partition_pages = flags.local_partition;
  spec.workload = info.factory(flags.scale);
  spec.version = version;
  spec.adaptive = flags.adaptive;
  spec.oracle = flags.oracle;
  spec.with_interactive = flags.interactive;
  spec.interactive.sleep_time = static_cast<tmh::SimDuration>(flags.sleep_s * tmh::kSec);
  spec.runtime.release_batch = flags.release_batch;
  spec.runtime.num_prefetch_threads = flags.prefetch_threads;
  spec.runtime.drain_newest_first = flags.drain_newest_first;
  spec.checks = flags.checks;
  spec.monitor = flags.monitor;
  spec.monitor_config.protect_hot = flags.monitor_protect;
  if (flags.monitor_period_ms > 0) {
    spec.monitor_config.sample_period =
        static_cast<tmh::SimDuration>(flags.monitor_period_ms * tmh::kMsec);
  }
  return spec;
}

// Sweep mode: run every (workload, version) combination on a thread pool with
// a shared compile cache and print a one-line-per-run summary. Results are
// merged on the main thread in submission order, so the table is identical
// for every --jobs value.
int RunSweep(const Flags& flags, const std::vector<const tmh::WorkloadInfo*>& infos,
             const std::vector<tmh::AppVersion>& versions) {
  std::vector<tmh::ExperimentSpec> specs;
  std::vector<std::string> names;
  std::vector<std::string> version_labels;
  for (const tmh::WorkloadInfo* info : infos) {
    for (const tmh::AppVersion version : versions) {
      specs.push_back(SpecFor(flags, *info, version));
      names.push_back(info->name);
      version_labels.push_back(tmh::VersionLabel(version));
    }
  }
  tmh::SweepRunner runner(tmh::SweepOptions{flags.jobs});
  std::printf("sweep: %zu runs at scale %.2f on %d worker thread(s)\n\n", specs.size(),
              flags.scale, runner.jobs());
  const std::vector<tmh::ExperimentResult> results = runner.Run(specs);

  std::vector<std::string> headers = {"workload", "version", "exec(s)", "io-stall(s)",
                                      "hard-faults", "swap-reads"};
  if (flags.interactive) {
    headers.push_back("interactive(ms)");
  }
  headers.push_back("completed");
  tmh::ReportTable table(headers);
  bool all_completed = true;
  for (size_t i = 0; i < results.size(); ++i) {
    const tmh::ExperimentResult& result = results[i];
    all_completed = all_completed && result.completed;
    if (!result.check_failure.empty()) {
      std::fprintf(stderr, "INVARIANT VIOLATION in %s %s:\n%s\n", names[i].c_str(),
                   version_labels[i].c_str(), result.check_failure.c_str());
      all_completed = false;
    }
    std::vector<std::string> row = {
        names[i], version_labels[i],
        tmh::FormatDouble(tmh::ToSeconds(result.app.times.Execution()), 1),
        tmh::FormatDouble(tmh::ToSeconds(result.app.times.io_stall), 1),
        tmh::FormatCount(result.app.faults.hard_faults),
        tmh::FormatCount(result.swap_reads)};
    if (flags.interactive) {
      row.push_back(tmh::FormatDouble(result.interactive->mean_response_ns / 1e6, 1));
    }
    row.push_back(result.completed ? "yes" : "NO");
    table.AddRow(row);
  }
  table.Print();
  const tmh::CompileCache::Stats cache = runner.compile_cache().stats();
  std::printf("\ncompile cache: %llu hit(s), %llu miss(es)\n",
              (unsigned long long)cache.hits, (unsigned long long)cache.misses);
  return all_completed ? 0 : 1;
}

// Machine-readable dump of the headline metrics (stable key names).
void PrintJson(const Flags& flags, const tmh::WorkloadInfo& info,
               const tmh::ExperimentSpec& spec, const tmh::ExperimentResult& result) {
  const tmh::TimeBreakdown& t = result.app.times;
  std::printf("{\n");
  std::printf("  \"workload\": \"%s\",\n", info.name.c_str());
  std::printf("  \"version\": \"%s\",\n", tmh::VersionLabel(spec.version));
  std::printf("  \"scale\": %.4f,\n", flags.scale);
  std::printf("  \"completed\": %s,\n", result.completed ? "true" : "false");
  std::printf("  \"times_s\": {\"execution\": %.6f, \"user\": %.6f, \"system\": %.6f, "
              "\"resource_stall\": %.6f, \"io_stall\": %.6f},\n",
              tmh::ToSeconds(t.Execution()), tmh::ToSeconds(t.user), tmh::ToSeconds(t.system),
              tmh::ToSeconds(t.resource_stall), tmh::ToSeconds(t.io_stall));
  const tmh::FaultStats& f = result.app.faults;
  std::printf("  \"faults\": {\"hard\": %llu, \"collapsed\": %llu, \"soft\": %llu, "
              "\"rescue\": %llu, \"zero_fill\": %llu, \"release_saves\": %llu},\n",
              (unsigned long long)f.hard_faults, (unsigned long long)f.collapsed_faults,
              (unsigned long long)f.soft_faults, (unsigned long long)f.rescue_faults,
              (unsigned long long)f.zero_fill_faults, (unsigned long long)f.release_saves);
  std::printf("  \"kernel\": {\"daemon_activations\": %llu, \"daemon_pages_stolen\": %llu, "
              "\"daemon_invalidations\": %llu, \"releaser_pages_freed\": %llu, "
              "\"reactive_evictions\": %llu, \"local_evictions\": %llu, "
              "\"rescued\": %llu},\n",
              (unsigned long long)result.kernel.daemon_activations,
              (unsigned long long)result.kernel.daemon_pages_stolen,
              (unsigned long long)result.kernel.daemon_invalidations,
              (unsigned long long)result.kernel.releaser_pages_freed,
              (unsigned long long)result.kernel.reactive_evictions,
              (unsigned long long)result.kernel.local_evictions,
              (unsigned long long)(result.kernel.rescued_daemon_freed +
                                   result.kernel.rescued_release_freed));
  std::printf("  \"swap\": {\"reads\": %llu, \"writes\": %llu}",
              (unsigned long long)result.swap_reads, (unsigned long long)result.swap_writes);
  if (spec.machine.has_slow_tiers()) {
    std::printf(",\n  \"tiers\": {\"demotions\": %llu, \"promotions\": %llu, "
                "\"evictions\": %llu, \"writebacks\": %llu}",
                (unsigned long long)result.kernel.tier_demotions,
                (unsigned long long)result.kernel.tier_promotions,
                (unsigned long long)result.kernel.tier_evictions,
                (unsigned long long)result.kernel.tier_writebacks);
  }
  if (result.monitor.has_value()) {
    const tmh::MonitorStats& mo = *result.monitor;
    std::printf(",\n  \"monitor\": {\"ticks\": %llu, \"aggregations\": %llu, "
                "\"samples_armed\": %llu, \"samples_hit\": %llu, \"max_regions\": %llu, "
                "\"splits\": %llu, \"merges\": %llu, \"cold_pages_enqueued\": %llu, "
                "\"hot_pages_protected\": %llu, \"soft_faults\": %llu}",
                (unsigned long long)mo.ticks, (unsigned long long)mo.aggregations,
                (unsigned long long)mo.samples_armed, (unsigned long long)mo.samples_hit,
                (unsigned long long)mo.max_regions_seen, (unsigned long long)mo.region_splits,
                (unsigned long long)mo.region_merges,
                (unsigned long long)mo.cold_pages_enqueued,
                (unsigned long long)mo.hot_pages_protected,
                (unsigned long long)result.kernel.monitor_soft_faults);
  }
  if (result.interactive.has_value()) {
    const tmh::InteractiveMetrics& im = *result.interactive;
    std::printf(",\n  \"interactive\": {\"sweeps\": %lld, \"mean_response_ms\": %.4f, "
                "\"max_response_ms\": %.4f, \"hard_faults_per_sweep\": %.3f}",
                (long long)im.sweeps, im.mean_response_ns / 1e6, im.max_response_ns / 1e6,
                im.hard_faults_per_sweep);
  }
  std::printf("\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    return 2;
  }
  if (flags.scale <= 0 || flags.scale > 1.0) {
    std::fprintf(stderr, "--scale must be in (0, 1]\n");
    return 2;
  }
  // Expand --workload / --version lists. "all" covers the paper roster and
  // the O/P/R/B versions respectively.
  std::vector<const tmh::WorkloadInfo*> infos;
  if (flags.workload == "all") {
    for (const tmh::WorkloadInfo& w : tmh::AllWorkloads()) {
      infos.push_back(&w);
    }
  } else {
    for (const std::string& name : SplitList(flags.workload)) {
      const tmh::WorkloadInfo* found = tmh::FindWorkload(name);
      if (found == nullptr) {
        std::fprintf(stderr, "unknown workload '%s'; --list shows the roster\n", name.c_str());
        return 2;
      }
      infos.push_back(found);
    }
  }
  std::vector<tmh::AppVersion> versions;
  if (flags.version == "all") {
    versions = tmh::AllVersions();
  } else {
    for (const std::string& v : SplitList(flags.version)) {
      versions.push_back(ParseVersion(v));
    }
  }

  if (infos.size() * versions.size() > 1) {
    if (!flags.trace_path.empty() || !flags.html_path.empty() ||
        !flags.trace_out_path.empty() || !flags.metrics_out_path.empty() || flags.json) {
      std::fprintf(stderr,
                   "--trace/--html/--trace-out/--metrics-out/--json need a single "
                   "workload+version combination\n");
      return 2;
    }
    return RunSweep(flags, infos, versions);
  }

  const tmh::WorkloadInfo* info = infos[0];
  tmh::ExperimentSpec spec = SpecFor(flags, *info, versions[0]);
  if (!flags.trace_path.empty() || !flags.html_path.empty()) {
    spec.trace_period = static_cast<tmh::SimDuration>(flags.trace_period_s * tmh::kSec);
  }
  if (!flags.trace_out_path.empty() || !flags.metrics_out_path.empty()) {
    spec.observe = true;
  }

  if (!flags.json) {
    std::printf("%s version %s at scale %.2f on a %.1f MB machine%s\n\n", info->name.c_str(),
                tmh::VersionLabel(spec.version), flags.scale,
                static_cast<double>(spec.machine.user_memory_bytes) / (1024 * 1024),
                flags.adaptive ? " (adaptive)" : "");
  }
  const tmh::ExperimentResult result = tmh::RunExperiment(spec);
  if (!result.completed) {
    std::fprintf(stderr, "WARNING: run did not complete within the event budget\n");
  }
  if (!result.check_failure.empty()) {
    std::fprintf(stderr, "INVARIANT VIOLATION:\n%s\n", result.check_failure.c_str());
    return 1;
  }
  if (flags.checks && !flags.json) {
    std::printf("invariant checks: %llu passes, no violations\n\n",
                (unsigned long long)result.checks_run);
  }

  if (!flags.trace_out_path.empty()) {
    if (result.event_log.WriteChromeTrace(flags.trace_out_path)) {
      if (!flags.json) {
        std::printf("Chrome trace written to %s (%zu events%s)\n", flags.trace_out_path.c_str(),
                    result.event_log.events().size(),
                    result.event_log.dropped() > 0 ? ", capacity hit" : "");
      }
    } else {
      std::fprintf(stderr, "failed to write Chrome trace to %s\n",
                   flags.trace_out_path.c_str());
    }
  }
  if (!flags.metrics_out_path.empty()) {
    std::FILE* out = std::fopen(flags.metrics_out_path.c_str(), "w");
    const bool ok = out != nullptr &&
                    std::fwrite(result.metrics_text.data(), 1, result.metrics_text.size(),
                                out) == result.metrics_text.size();
    if (out != nullptr) {
      std::fclose(out);
    }
    if (ok) {
      if (!flags.json) {
        std::printf("metrics written to %s\n", flags.metrics_out_path.c_str());
      }
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n", flags.metrics_out_path.c_str());
    }
  }

  if (flags.json) {
    PrintJson(flags, *info, spec, result);
    return result.completed ? 0 : 1;
  }

  const tmh::TimeBreakdown& t = result.app.times;
  tmh::ReportTable times({"metric", "value"});
  times.AddRow({"execution time", tmh::FormatSeconds(tmh::ToSeconds(t.Execution()))});
  times.AddRow({"  user", tmh::FormatSeconds(tmh::ToSeconds(t.user))});
  times.AddRow({"  system", tmh::FormatSeconds(tmh::ToSeconds(t.system))});
  times.AddRow({"  resource stall", tmh::FormatSeconds(tmh::ToSeconds(t.resource_stall))});
  times.AddRow({"  I/O stall", tmh::FormatSeconds(tmh::ToSeconds(t.io_stall))});
  times.Print();
  std::printf("\n");

  tmh::ReportTable counters({"counter", "value"});
  const tmh::FaultStats& f = result.app.faults;
  counters.AddRow({"hard faults", tmh::FormatCount(f.hard_faults)});
  counters.AddRow({"collapsed faults", tmh::FormatCount(f.collapsed_faults)});
  counters.AddRow({"soft faults", tmh::FormatCount(f.soft_faults)});
  counters.AddRow({"rescue faults", tmh::FormatCount(f.rescue_faults)});
  counters.AddRow({"zero-fill faults", tmh::FormatCount(f.zero_fill_faults)});
  counters.AddRow({"swap reads / writes", tmh::FormatCount(result.swap_reads) + " / " +
                                              tmh::FormatCount(result.swap_writes)});
  counters.AddRow({"daemon activations", tmh::FormatCount(result.kernel.daemon_activations)});
  counters.AddRow({"daemon pages stolen", tmh::FormatCount(result.kernel.daemon_pages_stolen)});
  counters.AddRow({"daemon invalidations", tmh::FormatCount(result.kernel.daemon_invalidations)});
  counters.AddRow({"releaser pages freed", tmh::FormatCount(result.kernel.releaser_pages_freed)});
  counters.AddRow({"reactive evictions", tmh::FormatCount(result.kernel.reactive_evictions)});
  counters.AddRow({"local evictions", tmh::FormatCount(result.kernel.local_evictions)});
  counters.AddRow({"pages rescued", tmh::FormatCount(result.kernel.rescued_daemon_freed +
                                                     result.kernel.rescued_release_freed)});
  if (spec.machine.has_slow_tiers()) {
    counters.AddRow({"tier demotions / promotions",
                     tmh::FormatCount(result.kernel.tier_demotions) + " / " +
                         tmh::FormatCount(result.kernel.tier_promotions)});
    counters.AddRow({"tier evictions (writebacks)",
                     tmh::FormatCount(result.kernel.tier_evictions) + " (" +
                         tmh::FormatCount(result.kernel.tier_writebacks) + ")"});
  }
  if (result.monitor.has_value()) {
    const tmh::MonitorStats& mo = *result.monitor;
    counters.AddRow({"monitor samples (hits)", tmh::FormatCount(mo.samples_armed) + " (" +
                                                   tmh::FormatCount(mo.samples_hit) + ")"});
    counters.AddRow({"monitor regions (max)", tmh::FormatCount(mo.max_regions_seen)});
    counters.AddRow({"monitor splits / merges", tmh::FormatCount(mo.region_splits) + " / " +
                                                    tmh::FormatCount(mo.region_merges)});
    counters.AddRow({"monitor cold releases", tmh::FormatCount(mo.cold_pages_enqueued)});
    counters.AddRow({"monitor hot protects", tmh::FormatCount(mo.hot_pages_protected)});
    counters.AddRow(
        {"monitor soft faults", tmh::FormatCount(result.kernel.monitor_soft_faults)});
  }
  if (result.app.runtime.has_value()) {
    const tmh::RuntimeStats& rt = *result.app.runtime;
    counters.AddRow({"prefetch hints (filtered)",
                     tmh::FormatCount(rt.prefetch_hints) + " (" +
                         tmh::FormatCount(rt.prefetch_filtered_resident) + ")"});
    counters.AddRow({"release hints (filtered)",
                     tmh::FormatCount(rt.release_hints) + " (" +
                         tmh::FormatCount(rt.release_filtered_same_page +
                                          rt.release_filtered_not_resident) +
                         ")"});
    counters.AddRow({"releases buffered / drained",
                     tmh::FormatCount(rt.releases_buffered) + " / " +
                         tmh::FormatCount(rt.releases_issued_from_buffer)});
  }
  counters.Print();

  if (flags.interactive && result.interactive.has_value()) {
    const tmh::InteractiveMetrics& im = *result.interactive;
    std::printf("\ninteractive task: %lld sweeps, mean response %s, worst %s, "
                "hard faults/sweep %.1f\n",
                static_cast<long long>(im.sweeps),
                tmh::FormatSeconds(im.mean_response_ns / 1e9).c_str(),
                tmh::FormatSeconds(im.max_response_ns / 1e9).c_str(),
                im.hard_faults_per_sweep);
  }
  if (!flags.html_path.empty()) {
    const std::string html = tmh::RenderKernelTraceHtml(
        result.trace, info->name + " (" + tmh::VersionLabel(spec.version) + ")");
    if (tmh::WriteHtmlFile(flags.html_path, html)) {
      std::printf("\nHTML report written to %s\n", flags.html_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write HTML to %s\n", flags.html_path.c_str());
    }
  }
  if (!flags.trace_path.empty()) {
    if (result.trace.WriteCsv(flags.trace_path)) {
      std::printf("\ntrace written to %s (%zu samples)\n", flags.trace_path.c_str(),
                  result.trace.samples().size());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", flags.trace_path.c_str());
    }
  }
  return 0;
}
